// Task descriptor and per-worker descriptor pool.
//
// A Task owns a type-erased closure (the "captured environment" in BOTS
// terminology; `firstprivate` data in OpenMP terms). Environments up to
// Task::inline_env_capacity bytes live inside the descriptor itself —
// Table II of the paper shows almost every BOTS benchmark captures under
// 45 bytes per task, which is exactly why the paper suggests pre-allocated
// descriptor areas; larger environments (Floorplan captures ~5 KB) fall
// back to the heap.
//
// Lifetime: refs_ = 1 (the task itself, released when its body finishes)
// + 1 per live child. A task descriptor must outlive its children because
// children decrement the parent's unfinished-children counter at completion
// and the Task Scheduling Constraint walks parent chains.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "runtime/config.hpp"

namespace bots::rt {

class Worker;
class Task;
class RegionCtx;  // per-request server context (region_ctx.hpp)
struct DepNode;   // dependence-tracking side structure (dependency.hpp)

/// Where a task descriptor's storage came from, which decides how it is
/// released when the last reference drops.
enum class TaskStorage : std::uint8_t {
  stack_frame,  ///< implicit/root task living on a worker's stack; never freed
  pooled,       ///< from a per-worker TaskPool; recycled to the releasing worker
  heap,         ///< plain new/delete (use_task_pool = false)
  graph         ///< owned by a frozen TaskGraph; reset in place per replay
};

/// Static per-closure-type operations table. One immutable instance exists
/// per closure type, so a task descriptor stores a single pointer instead of
/// an (invoke, env_dtor) function-pointer pair — 8 bytes off the header and
/// one store less on the spawn fast path.
struct TaskOps {
  void (*invoke)(Task&);
  void (*destroy_env)(Task&) noexcept;
};

namespace detail {
template <class Fn>
struct TaskOpsFor;
}  // namespace detail

/// Payload variant for splittable range tasks (rt::spawn_range): one
/// descriptor stands for the whole iteration range [lo, hi). The executing
/// worker peels grain-sized chunks off the front and, whenever its local
/// queue runs dry (the signature a steal leaves behind), splits [mid, hi)
/// into a sibling descriptor that thieves can take. The fields live inside
/// the captured environment (the range runner closure); the descriptor
/// carries a pointer to them so the scheduler can recognize range tasks —
/// enqueue keeps them out of the private LIFO slot, where a splittable
/// range would be invisible to thieves until the owner's next scheduling
/// point.
struct RangeDesc {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t grain = 1;
};

class Task {
 public:
  static constexpr std::size_t inline_env_capacity = 128;

  Task() = default;
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  /// Move-construct the closure into the descriptor.
  template <class F>
  void init_env(F&& f) {
    using Fn = std::decay_t<F>;
    env_bytes_ = static_cast<std::uint32_t>(sizeof(Fn));
    if constexpr (sizeof(Fn) <= inline_env_capacity &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      env_ = ::new (static_cast<void*>(inline_env_)) Fn(std::forward<F>(f));
      heap_env_ = false;
    } else {
      env_ = new Fn(std::forward<F>(f));
      heap_env_ = true;
    }
    ops_ = &detail::TaskOpsFor<Fn>::ops;
  }

  void invoke() { ops_->invoke(*this); }

  void destroy_env() noexcept {
    if (env_ != nullptr) ops_->destroy_env(*this);
  }

  /// Typed view of the captured environment. Only valid between init_env and
  /// destroy_env, for the exact closure type passed to init_env.
  template <class Fn>
  [[nodiscard]] Fn* env_as() noexcept {
    return static_cast<Fn*>(env_);
  }

  /// Range payload (see RangeDesc). Null for ordinary tasks.
  [[nodiscard]] RangeDesc* range() const noexcept { return range_; }
  void set_range(RangeDesc* r) noexcept { range_ = r; }

  // -- intrusive state ------------------------------------------------------
  Task* parent() const noexcept { return parent_; }
  std::uint32_t depth() const noexcept { return depth_; }
  Tiedness tiedness() const noexcept { return tied_; }
  std::uint32_t env_bytes() const noexcept { return env_bytes_; }
  TaskStorage storage() const noexcept { return storage_; }

  void set_links(Task* parent, std::uint32_t depth, Tiedness t,
                 TaskStorage storage) noexcept {
    parent_ = parent;
    depth_ = depth;
    tied_ = t;
    storage_ = storage;
    // A task belongs to its parent's request context (server mode): the
    // whole subtree of a request root shares one RegionCtx, and ordinary
    // regions propagate the null pointer for free. Root frames with no
    // parent set theirs explicitly via set_ctx.
    ctx_ = parent != nullptr ? parent->ctx_ : nullptr;
  }

  /// Per-request server context this task's subtree belongs to; null in
  /// ordinary (non-server) regions. Inherited from the parent by set_links;
  /// set explicitly only on request root frames (Scheduler::run_ctx_root)
  /// and on split-off range halves whose parent pointer may not carry it.
  [[nodiscard]] RegionCtx* ctx() const noexcept { return ctx_; }
  void set_ctx(RegionCtx* c) noexcept { ctx_ = c; }

  // The reference count (low half) and unfinished-children count (high half)
  // live in ONE 64-bit atomic: a spawn charges its parent one reference and
  // one unfinished child in a single RMW, halving the parent-cacheline
  // traffic of the spawn and finish fast paths.
  static constexpr std::uint64_t ref_one = 1;
  static constexpr std::uint64_t child_one = std::uint64_t{1} << 32;
  static constexpr std::uint64_t ref_mask = child_one - 1;

  void add_child_ref() noexcept {
    state_.fetch_add(child_one + ref_one, std::memory_order_relaxed);
  }

  /// Bulk add_child_ref for graph replay: charge the parent `n` children and
  /// `n` references in ONE RMW before any replayed root is enqueued — the
  /// per-spawn parent-cacheline traffic a replay exists to avoid.
  void add_children_bulk(std::uint64_t n) noexcept {
    state_.fetch_add(n * (child_one + ref_one), std::memory_order_relaxed);
  }

  /// One extra reference with no child charge — the dependence tracker's
  /// descriptor pin (dependency.hpp). Must be taken on the generator thread
  /// BEFORE the task is published, preserving the rule exclusive() and the
  /// release_ref() fast path rely on: after the body has finished, the
  /// state word only ever decreases.
  void add_ref() noexcept {
    state_.fetch_add(ref_one, std::memory_order_relaxed);
  }

  void child_completed() noexcept {
    state_.fetch_sub(child_one, std::memory_order_acq_rel);
  }

  /// Fused child_completed + release_ref for the common case where the
  /// completing child descriptor dies in the same breath: one RMW announces
  /// the completion and drops the child's reference. Returns true when this
  /// was the last reference and the caller must recycle the descriptor.
  [[nodiscard]] bool child_completed_and_release() noexcept {
    return (state_.fetch_sub(child_one + ref_one, std::memory_order_acq_rel) &
            ref_mask) == 1;
  }

  [[nodiscard]] std::uint32_t unfinished_children() const noexcept {
    return static_cast<std::uint32_t>(state_.load(std::memory_order_acquire) >>
                                      32);
  }

  /// Exclusivity probe for the fused finish path: true when the state word
  /// reads exactly one reference and zero unfinished children. References
  /// and children are only ever added by this task's own executor (spawn),
  /// so once the body has finished both counts can only decrease — an
  /// observed ref_one is stable, and the caller owns the descriptor outright
  /// with no RMW needed. (children > 0 implies refs >= 2, since every live
  /// child holds a reference, so ref_one alone proves both halves.)
  [[nodiscard]] bool exclusive() const noexcept {
    return state_.load(std::memory_order_acquire) == ref_one;
  }

  /// Drops one reference; returns true when this was the last one and the
  /// caller must recycle the descriptor (and then drop the parent's ref).
  /// Fast path: observing exactly one reference and no unfinished children
  /// means every party that ever held a reference is gone (references are
  /// only ever added by this task's own executor, in spawn), so the caller
  /// is exclusive and no RMW is needed — leaf tasks release with one load.
  [[nodiscard]] bool release_ref() noexcept {
    if (state_.load(std::memory_order_acquire) == ref_one) return true;
    return (state_.fetch_sub(ref_one, std::memory_order_acq_rel) & ref_mask) ==
           1;
  }

  /// Restore the invariants a recycled descriptor must re-enter the spawn
  /// path with. Only the fields init_env/set_links do not overwrite need
  /// resetting: the fused state word (refs back to 1, children 0) and the
  /// environment pointer (so a stray destroy_env on an uninitialised
  /// descriptor stays a no-op). home_node_ deliberately survives: the birth
  /// node is a property of the descriptor's MEMORY (where its chunk was
  /// carved and first-touched), not of any one use.
  void reset_for_reuse() noexcept {
    env_ = nullptr;
    range_ = nullptr;
    ctx_ = nullptr;  // a recycled descriptor must not leak its old request
    dep_ = nullptr;  // dependence node dies with the scope that allocated it
    state_.store(ref_one, std::memory_order_relaxed);
  }

  /// Dependence-tracking node (dependency.hpp) for dep-spawned and
  /// graph-replayed tasks; null for every other task, so the finish-path
  /// successor-release hook costs one null check.
  [[nodiscard]] DepNode* dep() const noexcept { return dep_; }
  void set_dep(DepNode* d) noexcept { dep_ = d; }

  /// Locality node whose chunk this descriptor's memory was carved on (set
  /// once, at construction). The retire path routes the descriptor back to
  /// this node's arena under SchedulerConfig::use_node_pools, and counts a
  /// pool_remote_free whenever a free lands anywhere else.
  [[nodiscard]] std::uint16_t home_node() const noexcept { return home_node_; }
  void set_home_node(unsigned node) noexcept {
    home_node_ = static_cast<std::uint16_t>(node);
  }

  /// True when `ancestor` appears on this task's parent chain.
  [[nodiscard]] bool is_descendant_of(const Task& ancestor) const noexcept {
    const Task* node = this;
    while (node != nullptr && node->depth_ > ancestor.depth_) {
      node = node->parent_;
    }
    return node == &ancestor;
  }

  /// Intrusive link: freelist chain while recycled in a TaskPool, parked
  /// chain while sitting in a worker's TSC inbox. The two uses are disjoint
  /// in a task's lifetime (a parked task is live, a pooled one is dead).
  Task* pool_next = nullptr;

 private:
  template <class Fn>
  friend struct detail::TaskOpsFor;

  const TaskOps* ops_ = nullptr;
  void* env_ = nullptr;
  Task* parent_ = nullptr;
  RangeDesc* range_ = nullptr;  ///< range payload inside env_, else null
  RegionCtx* ctx_ = nullptr;    ///< owning request context; null off-server
  DepNode* dep_ = nullptr;      ///< dependence node; null for non-dep tasks
  std::atomic<std::uint64_t> state_{ref_one};  ///< children<<32 | refs
  std::uint32_t depth_ = 0;
  std::uint32_t env_bytes_ = 0;
  Tiedness tied_ = Tiedness::tied;
  TaskStorage storage_ = TaskStorage::stack_frame;
  bool heap_env_ = false;
  std::uint16_t home_node_ = 0;  ///< birth node of this descriptor's memory
  alignas(std::max_align_t) std::byte inline_env_[inline_env_capacity];
};

namespace detail {

template <class Fn>
struct TaskOpsFor {
  static void invoke(Task& t) { (*static_cast<Fn*>(t.env_))(); }
  static void destroy_env(Task& t) noexcept {
    if (t.heap_env_) {
      delete static_cast<Fn*>(t.env_);
    } else {
      static_cast<Fn*>(t.env_)->~Fn();
    }
    t.env_ = nullptr;
  }
  static constexpr TaskOps ops{&TaskOpsFor::invoke, &TaskOpsFor::destroy_env};
};

}  // namespace detail

/// Per-worker freelist of task descriptors. Allocation and recycling happen
/// on whichever worker runs them; descriptors migrate between pools when a
/// task is stolen, which keeps the pools roughly balanced. All chunk memory
/// is owned here and released when the worker is destroyed.
class TaskPool {
 public:
  static constexpr std::size_t chunk_tasks = 64;

  TaskPool() = default;
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  ~TaskPool() {
    for (auto& chunk : chunks_) {
      ::operator delete[](chunk, std::align_val_t{alignof(Task)});
    }
  }

  /// `reused` reports whether the freelist served the request (pool_reuse
  /// vs pool_fresh statistics; bench_ablation_taskpool relies on them).
  Task* allocate(bool& reused) {
    if (free_ != nullptr) {
      Task* t = free_;
      free_ = t->pool_next;
      t->pool_next = nullptr;
      t->reset_for_reuse();
      reused = true;
      return t;
    }
    reused = false;
    if (next_in_chunk_ >= chunk_tasks) refill();
    Task* slot = chunk_cursor_ + next_in_chunk_;
    ++next_in_chunk_;
    return ::new (static_cast<void*>(slot)) Task();
  }

  void recycle(Task* t) noexcept {
    t->pool_next = free_;
    free_ = t;
  }

 private:
  void refill() {
    // Grow the bookkeeping vector BEFORE allocating the chunk: with the
    // slot reserved, the push_back below cannot throw, so a bad_alloc
    // (real or injected upstream) can never leak a chunk. Throwing out of
    // refill leaves the pool unchanged — the scheduler's degradation
    // ladder catches it and falls back to heap descriptors.
    chunks_.reserve(chunks_.size() + 1);
    void* raw = ::operator new[](sizeof(Task) * chunk_tasks,
                                 std::align_val_t{alignof(Task)});
    chunk_cursor_ = static_cast<Task*>(raw);
    chunks_.push_back(static_cast<std::byte*>(raw));
    next_in_chunk_ = 0;
  }

  Task* free_ = nullptr;
  Task* chunk_cursor_ = nullptr;
  std::size_t next_in_chunk_ = chunk_tasks;
  std::vector<std::byte*> chunks_;
};

/// Shared descriptor arena for ONE locality node (SchedulerConfig::
/// use_node_pools). The per-worker fast path stays lock-free: each worker
/// keeps a private cache of home-node descriptors (Worker::home_free) and
/// only touches the arena in batches — a refill chain when the cache runs
/// dry, a stash flush when remotely-retired descriptors fly home — so the
/// mutex here guards whole-batch splices, never per-task traffic.
///
/// First-touch discipline: only the node's own (pinned) workers ever carve
/// fresh descriptors from this arena, and construction (the placement-new
/// that first writes the slot) happens on the carving worker's thread —
/// outside the lock — so under first-touch NUMA policy every chunk's pages
/// fault in on the node that will keep reusing them. Remote workers only
/// ever *return* descriptors here (put_chain), which writes one link word
/// per task; the descriptor bodies are next rewritten by home workers.
class NodeArena {
 public:
  static constexpr std::size_t chunk_tasks = TaskPool::chunk_tasks;
  /// Descriptors a worker cache pulls per refill: big enough to amortize
  /// the lock far below per-spawn cost, small enough not to strand the
  /// node's freelist in one worker's private cache.
  static constexpr std::size_t refill_batch = 16;
  /// Home-cache spill threshold: when a worker's private cache reaches
  /// this, it splices refill_batch descriptors back to the arena. Without
  /// the spill, an intra-node producer-consumer pattern (worker A spawns,
  /// same-node worker B executes and frees) grows B's cache by one per
  /// task while A carves fresh chunks forever — arena memory O(total
  /// tasks) instead of O(peak live). Balanced alloc/free never reaches
  /// the threshold, so the recursion hot path pays one compare.
  static constexpr std::size_t cache_spill = 2 * refill_batch;

  explicit NodeArena(unsigned node) noexcept : node_(node) {}
  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  ~NodeArena() {
    for (auto& chunk : chunks_) {
      ::operator delete[](chunk, std::align_val_t{alignof(Task)});
    }
  }

  /// Pop up to `max` recycled descriptors as a pool_next chain (most
  /// recently freed first); writes the count to `got`. Returns nullptr
  /// (got = 0) when the freelist is empty — the caller carves fresh then.
  [[nodiscard]] Task* take_chain(std::size_t max, std::size_t& got) {
    std::lock_guard<std::mutex> lock(mu_);
    got = 0;
    if (free_ == nullptr) return nullptr;
    Task* head = free_;
    Task* tail = head;
    got = 1;
    while (got < max && tail->pool_next != nullptr) {
      tail = tail->pool_next;
      ++got;
    }
    free_ = tail->pool_next;
    tail->pool_next = nullptr;
    free_count_ -= got;
    return head;
  }

  /// Splice a pool_next chain of `n` descriptors [head..tail] onto the
  /// freelist: the batched retirement flight home (one lock per stash
  /// flush, not per task). Every descriptor must have been carved HERE.
  void put_chain(Task* head, Task* tail, std::size_t n) noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    tail->pool_next = free_;
    free_ = head;
    free_count_ += n;
  }

  /// Construct one fresh descriptor (freelist empty). The slot is claimed
  /// under the lock; the placement-new — the first write to the memory, the
  /// touch that places the page — runs on the caller's thread outside it.
  [[nodiscard]] Task* carve() {
    Task* slot = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_in_chunk_ >= chunk_tasks) {
        // Reserve-then-allocate, as in TaskPool::refill: the push_back
        // cannot throw once the slot is reserved, so a bad_alloc unwinds
        // with the arena state (cursor, carved_) untouched and no chunk
        // leaked — the caller's degradation ladder takes over.
        chunks_.reserve(chunks_.size() + 1);
        void* raw = ::operator new[](sizeof(Task) * chunk_tasks,
                                     std::align_val_t{alignof(Task)});
        chunk_cursor_ = static_cast<Task*>(raw);
        chunks_.push_back(static_cast<std::byte*>(raw));
        next_in_chunk_ = 0;
      }
      slot = chunk_cursor_ + next_in_chunk_;
      ++next_in_chunk_;
      ++carved_;
    }
    Task* t = ::new (static_cast<void*>(slot)) Task();
    t->set_home_node(node_);
    return t;
  }

  /// Between-regions introspection (tests, node_pool_snapshot): descriptors
  /// currently on the freelist and total ever carved from this arena.
  struct Counts {
    std::size_t free_count = 0;
    std::size_t carved = 0;
  };
  [[nodiscard]] Counts counts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {free_count_, carved_};
  }

  [[nodiscard]] unsigned node() const noexcept { return node_; }

 private:
  mutable std::mutex mu_;
  Task* free_ = nullptr;
  std::size_t free_count_ = 0;
  std::size_t carved_ = 0;
  Task* chunk_cursor_ = nullptr;
  std::size_t next_in_chunk_ = chunk_tasks;
  std::vector<std::byte*> chunks_;
  unsigned node_;
};

/// Per-worker outbound retirement stash toward ONE remote birth node: a
/// descriptor freed off its birth node chains here (two plain stores) and
/// the whole chain flies home in one NodeArena::put_chain splice when the
/// stash reaches flush_batch — so cross-node frees cost one remote lock
/// per batch instead of per descriptor. Workers also flush every stash at
/// region end, bounding in-transit memory and making the between-regions
/// balance exact (every remote-born free has landed home).
struct RemoteStash {
  static constexpr std::uint32_t flush_batch = 16;

  Task* head = nullptr;
  Task* tail = nullptr;
  std::uint32_t count = 0;

  void push(Task* t) noexcept {
    t->pool_next = head;
    if (head == nullptr) tail = t;
    head = t;
    ++count;
  }
};

}  // namespace bots::rt
