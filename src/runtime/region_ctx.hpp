// Per-request region context (PR 7 server mode).
//
// PR 6 attached the fault-tolerance state — sticky cancel word, deadline,
// first-exception slot, execution ledgers, watchdog progress — to the ONE
// Region a Scheduler runs at a time. A resident server multiplexes many
// concurrent client requests over a single long-lived region, so that state
// must live per REQUEST instead: RegionCtx is that per-request context.
//
// Every task descriptor carries a RegionCtx* (Task::ctx), inherited from its
// parent at set_links time, so a request's whole task subtree shares one
// context at zero cost to non-server regions (the pointer is null there and
// every ctx check short-circuits on it). The scheduler consults the context
// at the same dispatch boundaries as the region cancel word — deferred
// dequeue, undeferred/inline dispatch, range grain chunks — which gives each
// request independent cooperative cancellation, deadline enforcement, fault
// isolation (a body exception cancels only its own context, never the
// resident region) and an exact per-request ledger:
//
//   executed + discarded == deferred      (after the request has drained)
//
// The terminal state (RequestStatus) is decided exactly once by a CAS:
// completed, cancelled, deadline_exceeded or rejected_overload — every
// submitted request ends in exactly one of them, which is the conservation
// law bench_server_mix and the CI soak job assert.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>

namespace bots::rt {

/// How a parallel region ended. `completed` = the quiescence barrier was
/// reached with no cancel; the other values name the FIRST cancel cause
/// (sticky: later causes lose the CAS). Shared by the scheduler-global
/// Region (one per run_single/run_all) and the per-request RegionCtx.
enum class RegionStatus : std::uint8_t {
  completed = 0,
  cancelled = 1,          ///< rt::cancel_region(), watchdog, or cancel_on_exception
  deadline_exceeded = 2,  ///< the region's deadline expired first
  unknown = 3,            ///< sentinel: asked while a region is still live
                          ///< (Scheduler::last_region_status() during server
                          ///< mode) — use per-request RegionHandle instead
};

[[nodiscard]] constexpr const char* to_string(RegionStatus s) noexcept {
  switch (s) {
    case RegionStatus::completed: return "completed";
    case RegionStatus::cancelled: return "cancelled";
    case RegionStatus::deadline_exceeded: return "deadline_exceeded";
    case RegionStatus::unknown: return "unknown";
  }
  return "?";
}

/// Terminal state of a server-submitted request. `pending` is the only
/// non-terminal value; finalize() moves a context out of it exactly once.
enum class RequestStatus : std::uint8_t {
  pending = 0,            ///< queued or executing; not yet terminal
  completed = 1,          ///< body and every descendant task finished
  cancelled = 2,          ///< client cancel, shed, fault, or server shutdown
  deadline_exceeded = 3,  ///< the request's deadline expired first
  rejected_overload = 4,  ///< never admitted: queue full or server stopping
};

[[nodiscard]] constexpr const char* to_string(RequestStatus s) noexcept {
  switch (s) {
    case RequestStatus::pending: return "pending";
    case RequestStatus::completed: return "completed";
    case RequestStatus::cancelled: return "cancelled";
    case RequestStatus::deadline_exceeded: return "deadline_exceeded";
    case RequestStatus::rejected_overload: return "rejected_overload";
  }
  return "?";
}

class RegionCtx {
 public:
  explicit RegionCtx(std::uint64_t id, std::uint32_t weight = 1) noexcept
      : id_(id), weight_(weight == 0 ? 1u : weight) {}

  RegionCtx(const RegionCtx&) = delete;
  RegionCtx& operator=(const RegionCtx&) = delete;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  /// Weighted-share fairness weight (>= 1): a weight-2 request receives
  /// roots twice as often as a weight-1 one under ServerFairness::weighted_share.
  [[nodiscard]] std::uint32_t weight() const noexcept { return weight_; }

  /// Set once by the server at submit / admission; read by the monitor and
  /// the latency accounting. Default-constructed time_point = unset.
  std::chrono::steady_clock::time_point arrival{};
  std::chrono::steady_clock::time_point deadline{};
  [[nodiscard]] bool has_deadline() const noexcept {
    return deadline != std::chrono::steady_clock::time_point{};
  }

  // -- cooperative cancellation (per request) -------------------------------
  // Same sticky first-cause CAS discipline as Region::cancel: the request's
  // whole task subtree observes it at every dispatch boundary, while sibling
  // requests and the resident region never do.

  void cancel(RegionStatus why) noexcept {
    std::uint8_t expected = 0;
    cancel_state_.compare_exchange_strong(expected,
                                          static_cast<std::uint8_t>(why),
                                          std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancel_state_.load(std::memory_order_relaxed) != 0;
  }
  [[nodiscard]] RegionStatus cancel_cause() const noexcept {
    return static_cast<RegionStatus>(
        cancel_state_.load(std::memory_order_relaxed));
  }

  // -- first exception (per request) ----------------------------------------
  // Capturing always cancels the context: one client's exception discards
  // only that client's not-yet-started tasks (per-request fault isolation —
  // the Region-level cancel_on_exception knob is irrelevant here because
  // the blast radius is already a single request).

  void store_exception() noexcept {
    {
      std::lock_guard<std::mutex> lock(wait_mutex_);
      if (!first_exception_) first_exception_ = std::current_exception();
    }
    cancel(RegionStatus::cancelled);
  }
  [[nodiscard]] std::exception_ptr exception() const {
    std::lock_guard<std::mutex> lock(wait_mutex_);
    return first_exception_;
  }

  // -- execution ledger (per request) ---------------------------------------
  // Mirrors the PR 6 region-wide invariant at request granularity: every
  // task deferred under this context is eventually dispatched exactly once,
  // as an execute or a discard, so after the request drains
  // executed + discarded == deferred.

  void note_deferred() noexcept {
    deferred_.fetch_add(1, std::memory_order_relaxed);
    live_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Bulk variant for graph replay: a frozen graph's node count is known up
  /// front, so one pair of RMWs accounts the whole replayed population
  /// before any root is enqueued (the ledger can only ever overcount live,
  /// never open early).
  void note_deferred_bulk(std::uint64_t n) noexcept {
    deferred_.fetch_add(n, std::memory_order_relaxed);
    live_.fetch_add(n, std::memory_order_relaxed);
  }
  /// One deferred task of this request fully retired (executed or
  /// discarded, descriptor gone). live() == 0 with the root frame's direct
  /// children joined means the request's whole subtree is quiescent: an
  /// in-flight descendant either still holds its own live count or is
  /// executing synchronously inside one that does.
  void note_finished() noexcept {
    live_.fetch_sub(1, std::memory_order_release);
  }
  [[nodiscard]] std::uint64_t live() const noexcept {
    return live_.load(std::memory_order_acquire);
  }
  void note_executed() noexcept {
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_discarded() noexcept {
    discarded_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t deferred() const noexcept {
    return deferred_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t discarded() const noexcept {
    return discarded_.load(std::memory_order_relaxed);
  }
  /// Valid once the request is terminal and its subtree has drained.
  [[nodiscard]] bool ledger_balanced() const noexcept {
    return executed() + discarded() == deferred();
  }

  // -- watchdog progress (per request) --------------------------------------
  // Bumped on every dispatch and range chunk of this request's subtree; the
  // server's monitor reports a per-request stall when it stops moving.

  void note_progress() noexcept {
    progress_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t progress() const noexcept {
    return progress_.load(std::memory_order_relaxed);
  }

  // -- terminal state -------------------------------------------------------

  /// Move the request out of `pending` exactly once (first caller wins) and
  /// wake every wait()er. Records the admission-to-terminal latency when
  /// `arrival` was set. Returns whether THIS call won the transition.
  bool finalize(RequestStatus s) noexcept {
    std::uint8_t expected =
        static_cast<std::uint8_t>(RequestStatus::pending);
    if (!terminal_.compare_exchange_strong(expected,
                                           static_cast<std::uint8_t>(s),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      return false;
    }
    if (arrival != std::chrono::steady_clock::time_point{}) {
      latency_us_.store(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - arrival)
              .count(),
          std::memory_order_relaxed);
    }
    {
      // Empty critical section: a wait()er between its predicate check and
      // its cv wait holds the mutex, so acquiring it here before notify
      // closes the lost-wakeup window.
      std::lock_guard<std::mutex> lock(wait_mutex_);
    }
    wait_cv_.notify_all();
    return true;
  }

  [[nodiscard]] RequestStatus status() const noexcept {
    return static_cast<RequestStatus>(
        terminal_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool done() const noexcept {
    return status() != RequestStatus::pending;
  }

  /// Block until the request is terminal; returns the terminal status.
  RequestStatus wait() const {
    std::unique_lock<std::mutex> lock(wait_mutex_);
    wait_cv_.wait(lock, [this] { return done(); });
    return status();
  }

  /// Admission-to-terminal latency; 0 until the request is terminal (or when
  /// it was rejected before arrival was stamped).
  [[nodiscard]] std::chrono::microseconds latency() const noexcept {
    return std::chrono::microseconds(
        latency_us_.load(std::memory_order_relaxed));
  }

 private:
  const std::uint64_t id_;
  const std::uint32_t weight_;
  std::atomic<std::uint8_t> cancel_state_{0};
  std::atomic<std::uint8_t> terminal_{
      static_cast<std::uint8_t>(RequestStatus::pending)};
  std::atomic<std::uint64_t> deferred_{0};
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> discarded_{0};
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<std::int64_t> latency_us_{0};
  mutable std::mutex wait_mutex_;
  mutable std::condition_variable wait_cv_;
  std::exception_ptr first_exception_;  ///< guarded by wait_mutex_
};

}  // namespace bots::rt
