// Locality domains for topology-aware scheduling.
//
// A Topology maps every worker of a team onto a locality domain ("node" —
// a NUMA node on real hardware). The hierarchical steal policy
// (steal_policy.hpp) consults it to probe same-node victims before crossing
// the interconnect, to shrink cross-node steal batches, and — through the
// victim order — to keep freshly split range halves on the node that
// produced them (a same-node thief reaches them first). The node map also
// scopes descriptor memory (one NodeArena per node under use_node_pools:
// descriptors are carved, first-touched and retired on their birth node)
// and addresses the per-node RangeMailbox hint-aware placement delivers
// split halves through.
//
// Three sources, in precedence order:
//   1. A synthetic "NxM" spec (N nodes of M cores) from
//      SchedulerConfig::synthetic_topology or the RT_SYNTHETIC_TOPOLOGY
//      environment variable. Fully deterministic: worker w lives on node
//      (w / M) % N. This is what tests and CI use — policy behaviour must
//      not depend on the machine the suite happens to run on.
//   2. sysfs discovery (/sys/devices/system/node/node*/cpulist). Workers
//      are mapped to CPUs round-robin by id (worker w -> cpu w % ncpus).
//   3. Flat fallback: one node holding every worker (single-socket boxes,
//      containers without sysfs). The hierarchical policy then degenerates
//      to last-victim stealing — there is no interconnect to respect.
//
// Each node also carries the cpuset backing it (cpus_on): the sysfs cpulist
// for discovered topologies, the deterministic block [n*M, (n+1)*M) for a
// synthetic "NxM" spec, and empty for the flat fallback (nothing to pin
// against). With SchedulerConfig::pin_workers the scheduler pins every
// worker to its node's cpuset at region entry (affinity.hpp), turning the
// map from an affinity *hint* into enforced placement; without pinning —
// or when the cpuset does not match the real machine — the map stays a
// hint and the worker runs unpinned.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/config.hpp"

namespace bots::rt {

class Topology {
 public:
  /// Build the worker -> node map for a team of `workers`. `synthetic` is
  /// the "NxM" override ("" consults RT_SYNTHETIC_TOPOLOGY, then sysfs).
  [[nodiscard]] static Topology detect(unsigned workers,
                                       const std::string& synthetic) {
    Topology t;
    t.node_of_.assign(workers == 0 ? 1 : workers, 0);
    std::string spec = synthetic;
    if (spec.empty()) {
      if (const char* env = std::getenv("RT_SYNTHETIC_TOPOLOGY")) spec = env;
    }
    unsigned nodes = 0;
    unsigned cores = 0;
    // A non-empty spec that does not parse falls through to sysfs/flat like
    // the unset case — but loudly: a typo'd RT_SYNTHETIC_TOPOLOGY silently
    // running flat would invalidate whatever locality experiment asked for
    // it (same malformed-env contract as config.hpp's env_* helpers).
    if (!spec.empty() && !parse_synthetic(spec, nodes, cores)) {
      warn_malformed_env("RT_SYNTHETIC_TOPOLOGY", spec.c_str());
    }
    if (parse_synthetic(spec, nodes, cores)) {
      t.source_ = "synthetic";
      for (unsigned w = 0; w < t.node_of_.size(); ++w) {
        t.node_of_[w] = (w / cores) % nodes;
      }
      t.build_node_lists();
      // Node n of an "NxM" spec stands for the CPU block [n*M, (n+1)*M).
      // Whether those CPUs exist on this machine is the pinning layer's
      // problem (affinity.hpp falls back cleanly when they do not).
      t.node_cpus_.assign(t.nodes_.size(), {});
      for (unsigned n = 0; n < t.node_cpus_.size(); ++n) {
        for (unsigned c = 0; c < cores; ++c) t.node_cpus_[n].push_back(n * cores + c);
      }
    } else if (std::vector<unsigned> cpu_node = read_sysfs_nodes();
               !cpu_node.empty()) {
      t.source_ = "sysfs";
      for (unsigned w = 0; w < t.node_of_.size(); ++w) {
        t.node_of_[w] = cpu_node[w % cpu_node.size()];
      }
      t.build_node_lists();
      t.node_cpus_.assign(t.nodes_.size(), {});
      for (unsigned cpu = 0; cpu < cpu_node.size(); ++cpu) {
        if (cpu_node[cpu] < t.node_cpus_.size()) {
          t.node_cpus_[cpu_node[cpu]].push_back(cpu);
        }
      }
    } else {
      t.source_ = "flat";
      t.build_node_lists();
      t.node_cpus_.assign(t.nodes_.size(), {});  // flat: nothing to pin against
    }
    return t;
  }

  /// "NxM": N locality domains of M cores each. Returns false (and leaves
  /// the outputs untouched) on anything that is not two positive integers
  /// around a single 'x'.
  [[nodiscard]] static bool parse_synthetic(const std::string& spec,
                                            unsigned& nodes, unsigned& cores) {
    const std::size_t x = spec.find('x');
    if (x == std::string::npos || x == 0 || x + 1 >= spec.size()) return false;
    unsigned n = 0;
    unsigned c = 0;
    for (std::size_t i = 0; i < x; ++i) {
      if (spec[i] < '0' || spec[i] > '9') return false;
      n = n * 10 + static_cast<unsigned>(spec[i] - '0');
    }
    for (std::size_t i = x + 1; i < spec.size(); ++i) {
      if (spec[i] < '0' || spec[i] > '9') return false;
      c = c * 10 + static_cast<unsigned>(spec[i] - '0');
    }
    if (n == 0 || c == 0) return false;
    nodes = n;
    cores = c;
    return true;
  }

  [[nodiscard]] unsigned num_workers() const noexcept {
    return static_cast<unsigned>(node_of_.size());
  }
  [[nodiscard]] unsigned num_nodes() const noexcept {
    return static_cast<unsigned>(nodes_.size());
  }
  [[nodiscard]] unsigned node_of(unsigned worker) const noexcept {
    return worker < node_of_.size() ? node_of_[worker] : 0u;
  }
  [[nodiscard]] bool same_node(unsigned a, unsigned b) const noexcept {
    return node_of(a) == node_of(b);
  }
  /// Worker ids living on `node` (ascending). Empty for out-of-range nodes.
  [[nodiscard]] const std::vector<unsigned>& workers_on(
      unsigned node) const noexcept {
    static const std::vector<unsigned> empty;
    return node < nodes_.size() ? nodes_[node] : empty;
  }
  /// Whether any worker lives on `node`. Nodes can be empty when the team
  /// is smaller than the machine (an 8-node box running 4 workers): such a
  /// node is never a steal tier, never owns live descriptors, and must
  /// never be a placement target — nobody would drain its mailbox.
  [[nodiscard]] bool has_workers(unsigned node) const noexcept {
    return node < nodes_.size() && !nodes_[node].empty();
  }
  /// CPU ids backing `node` — the cpuset pin_workers pins that node's
  /// workers to. Empty for the flat fallback and out-of-range nodes (no
  /// locality information means nothing worth pinning to).
  [[nodiscard]] const std::vector<unsigned>& cpus_on(
      unsigned node) const noexcept {
    static const std::vector<unsigned> empty;
    return node < node_cpus_.size() ? node_cpus_[node] : empty;
  }
  /// "synthetic", "sysfs" or "flat".
  [[nodiscard]] const std::string& source() const noexcept { return source_; }

  /// Human-readable summary, e.g. "2x4 (synthetic)" — recorded by
  /// bench/run_baseline.sh so perf numbers stay interpretable across boxes.
  [[nodiscard]] std::string describe() const {
    std::ostringstream os;
    os << num_nodes() << 'x'
       << (num_nodes() > 0 ? (num_workers() + num_nodes() - 1) / num_nodes()
                           : num_workers())
       << " (" << source_ << ')';
    return os.str();
  }

 private:
  /// cpu -> node map from sysfs; empty when unavailable or single-node
  /// (a single node carries no locality information — use the flat path).
  /// Enumerates the directory instead of probing node0, node1, ... so
  /// sparse node numbering (offlined nodes, CXL/sub-NUMA ids) is kept.
  [[nodiscard]] static std::vector<unsigned> read_sysfs_nodes() {
    std::vector<unsigned> cpu_node;
    unsigned nodes_seen = 0;
    try {
      std::error_code ec;
      std::filesystem::directory_iterator dir("/sys/devices/system/node", ec);
      if (ec) return {};
      for (const auto& entry : dir) {
        const std::string name = entry.path().filename().string();
        if (name.size() <= 4 || name.compare(0, 4, "node") != 0) continue;
        unsigned node = 0;
        bool numeric = true;
        for (std::size_t i = 4; i < name.size(); ++i) {
          if (name[i] < '0' || name[i] > '9') {
            numeric = false;
            break;
          }
          node = node * 10 + static_cast<unsigned>(name[i] - '0');
        }
        if (!numeric || node >= 4096) continue;
        std::ifstream in(entry.path() / "cpulist");
        if (!in.is_open()) continue;
        std::string list;
        std::getline(in, list);
        ++nodes_seen;
        std::istringstream ss(list);
        std::string part;
        while (std::getline(ss, part, ',')) {
          const std::size_t dash = part.find('-');
          unsigned lo = 0;
          unsigned hi = 0;
          if (dash == std::string::npos) {
            lo = hi = static_cast<unsigned>(std::stoul(part));
          } else {
            lo = static_cast<unsigned>(std::stoul(part.substr(0, dash)));
            hi = static_cast<unsigned>(std::stoul(part.substr(dash + 1)));
          }
          if (hi >= 4096 || lo > hi) return {};
          if (hi >= cpu_node.size()) cpu_node.resize(hi + 1, 0);
          for (unsigned cpu = lo; cpu <= hi; ++cpu) cpu_node[cpu] = node;
        }
      }
    } catch (...) {
      return {};  // unreadable/unparseable sysfs: fall back to flat
    }
    if (nodes_seen <= 1) return {};
    return cpu_node;
  }

  void build_node_lists() {
    unsigned max_node = 0;
    for (const unsigned n : node_of_) max_node = n > max_node ? n : max_node;
    nodes_.assign(max_node + 1, {});
    for (unsigned w = 0; w < node_of_.size(); ++w) {
      nodes_[node_of_[w]].push_back(w);
    }
  }

  std::vector<unsigned> node_of_;            ///< worker id -> node id
  std::vector<std::vector<unsigned>> nodes_; ///< node id -> worker ids
  std::vector<std::vector<unsigned>> node_cpus_;  ///< node id -> cpu ids
  std::string source_ = "flat";
};

}  // namespace bots::rt
