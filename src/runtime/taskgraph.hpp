// Taskgraph record-and-replay (PR 8): pay a region's discovery cost once.
//
// A dependence-tracked region rebuilt identically on every invocation —
// SparseLU factoring the same block structure, a server re-answering the
// same request shape — re-pays the whole discovery bill each time: closure
// allocation, descriptor allocation, tracker hash lookups, edge pushes,
// per-spawn parent RMWs. Record-and-replay amortises all of it. The FIRST
// execution of a region wrapped in rt::graph_region(tag, key, build) runs
// the build function under a recording DepScope and freezes the structure
// it produced — task bodies, tiedness, every dependence edge — into an
// arena-backed TaskGraph with a CSR successor table and pre-counted
// predecessor counters. Every LATER invocation replays the frozen graph:
//
//   * no tracker: predecessor counts are baked (DepNode::pending is a
//     store, not a hash probe + edge push),
//   * no descriptor allocation: each node owns its Task descriptor
//     (TaskStorage::graph) and is reset in place per replay,
//   * no per-spawn parent traffic: ONE add_children_bulk RMW charges the
//     parent for the whole graph,
//   * workers start from the recorded ROOT frontier; interior nodes are
//     released by the ordinary finish-path successor walk.
//
// Validity. A frozen graph bakes decisions that depend on the scheduler's
// shape (team size, topology, placement), so Scheduler::reconfigure() and
// team-shrink degradation bump a graph epoch that invalidates every
// recorded graph; the next invocation re-records. The caller-supplied
// `key` binds the recording to its buffers (same tag ⇒ same live buffers
// contract): replay with a different key re-records instead of touching
// stale addresses. A recording that degraded mid-build (fault injection
// driving alloc_task to the inline rung) is discarded un-frozen and simply
// retried on the next invocation.
//
// Concurrency. One graph supports ONE record or replay in flight at a time
// (replay resets node state in place). Concurrent invocations of the same
// tag must be serialised by the caller; TaskServer::submit_graph does this
// with a per-tag busy flag, falling back to plain dynamic dependence
// tracking for the loser.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runtime/dependency.hpp"
#include "runtime/scheduler.hpp"

namespace bots::rt {

class TaskGraph final : public GraphRecorder {
 public:
  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  [[nodiscard]] bool frozen() const noexcept { return frozen_; }
  /// A frozen graph is replayable only for the scheduler shape and buffer
  /// binding it was recorded against.
  [[nodiscard]] bool valid_for(const Scheduler& s, const void* key) const noexcept {
    return frozen_ && epoch_ == s.graph_epoch() && key_ == key;
  }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return succ_storage_.size();
  }
  [[nodiscard]] std::uint64_t replays() const noexcept { return replays_; }

  /// Drop any previous contents and start capturing a new recording bound
  /// to `key`.
  void begin_record(const void* key);
  /// Bake the captured structure: CSR successor table, predecessor counts,
  /// root frontier, epoch + key stamp. No-op (stays un-frozen) when the
  /// recording aborted.
  void freeze(Worker& w);
  /// Dispatch the frozen graph under the caller's current task and join it.
  void replay(Worker& w);
  /// Finish-path hook: release the baked successors of `n`'s task (called
  /// for execute AND discard retirements, so a cancelled replay drains).
  void release_baked(Worker& w, DepNode& n) noexcept;

  // -- GraphRecorder (driven by the recording DepScope) -----------------------
  std::uint32_t record_node(std::function<void()> body, Tiedness t) override;
  void record_edge(std::uint32_t pred, std::uint32_t succ) override;
  void record_abort() noexcept override;

 private:
  struct Node {
    Task task;                    ///< owned descriptor, reset per replay
    std::function<void()> body;   ///< re-invocable recorded body
    DepNode dep;                  ///< baked-successor span + pending counter
    Tiedness tied = Tiedness::tied;
    std::uint32_t npred = 0;      ///< baked predecessor count
  };

  /// Replay thunk: 8-byte env pointing at the node's owned body.
  struct BodyRef {
    const std::function<void()>* fn;
    void operator()() const { (*fn)(); }
  };

  std::deque<Node> nodes_;  ///< deque: Node is immovable (atomics, Task)
  std::vector<std::pair<std::uint32_t, std::uint32_t>> rec_edges_;
  std::vector<std::uint32_t> succ_storage_;  ///< CSR payload for baked_succs
  std::vector<std::uint32_t> roots_;         ///< nodes with npred == 0
  const void* key_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::uint64_t replays_ = 0;
  bool frozen_ = false;
  bool aborted_ = false;
};

/// Run one dependence-tracked region through `g`: replay when the graph is
/// frozen and valid for (scheduler shape, key); otherwise run `build` under
/// a recording scope and freeze the result. With use_taskgraph_replay off
/// (RT_TASKGRAPH_REPLAY=0) or outside a region, `build` runs under a plain
/// dynamic DepScope every time — the A/B knob the identity tests flip.
void run_graph_region(Scheduler& s, TaskGraph& g, const void* key,
                      const std::function<void(DepScope&)>& build);

/// Tag-registry convenience: look the graph up (or create it) in the
/// calling scheduler's per-tag registry. Callable only from inside a region
/// (it needs a scheduler); outside one it degrades to a plain dynamic scope.
void graph_region(const char* tag, const void* key,
                  const std::function<void(DepScope&)>& build);

}  // namespace bots::rt
