// Quickstart: the bots::rt task API in one page.
//
//   $ ./examples/quickstart [threads]
//
// Shows the three building blocks every BOTS kernel uses: task spawning
// with taskwait (a parallel fibonacci), worksharing with tasks inside a
// parallel loop, and worker-local accumulation with a final reduction —
// then prints the scheduler's counters.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

std::uint64_t fib(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  // Manual cut-off at n < 20: below it, plain recursion is cheaper than a
  // task (the paper's Figure 2 idiom).
  if (n < 20) return fib(n - 1) + fib(n - 2);
  rt::spawn([&a, n] { a = fib(n - 1); });
  rt::spawn(rt::Tiedness::untied, [&b, n] { b = fib(n - 2); });
  rt::taskwait();
  return a + b;
}

}  // namespace

int main(int argc, char** argv) {
  rt::SchedulerConfig cfg;
  if (argc > 1) cfg.num_threads = static_cast<unsigned>(std::stoul(argv[1]));
  rt::Scheduler sched(cfg);
  std::printf("team of %u workers\n", sched.num_workers());

  // 1. Recursive tasks + taskwait (single generator).
  std::uint64_t f = 0;
  sched.run_single([&f] { f = fib(30); });
  std::printf("fib(30) = %llu\n", static_cast<unsigned long long>(f));

  // 2. Tasks inside a worksharing loop (multiple generators), joined by the
  //    region's implicit barrier.
  constexpr int n = 1000;
  std::vector<double> squares(n);
  rt::DynamicSchedule dyn(0);
  sched.run_all([&](unsigned) {
    rt::for_dynamic(dyn, n, 16, [&](std::int64_t i) {
      rt::spawn([&squares, i] {
        squares[i] = static_cast<double>(i) * static_cast<double>(i);
      });
    });
  });
  std::printf("squares[999] = %.0f\n", squares[n - 1]);

  // 3. Worker-local (threadprivate-style) accumulation + reduction.
  rt::WorkerLocal<std::uint64_t> hits(sched, 0);
  sched.run_single([&] {
    for (int i = 0; i < 10'000; ++i) {
      rt::spawn([&hits] { ++hits.local(); });
    }
    rt::taskwait();
  });
  std::printf("counted %llu tasks via worker-local slots\n",
              static_cast<unsigned long long>(hits.reduce(
                  std::uint64_t{0},
                  [](std::uint64_t a, std::uint64_t b) { return a + b; })));

  const auto stats = sched.stats().total;
  std::printf(
      "scheduler counters: created=%llu deferred=%llu stolen=%llu "
      "taskwaits=%llu env-bytes=%llu\n",
      static_cast<unsigned long long>(stats.tasks_created),
      static_cast<unsigned long long>(stats.tasks_deferred),
      static_cast<unsigned long long>(stats.tasks_stolen),
      static_cast<unsigned long long>(stats.taskwaits),
      static_cast<unsigned long long>(stats.env_bytes));
  return 0;
}
