// bots_run: the generic suite driver (the bots_main equivalent).
//
//   $ ./examples/bots_run -l                      # list apps and versions
//   $ ./examples/bots_run -a nqueens              # best version, small input
//   $ ./examples/bots_run -a sort -v tied -i medium -t 16 -r 3
//   $ ./examples/bots_run -a fib --serial -i small
//   $ ./examples/bots_run -a health --all-versions -i test
//
// Every run self-verifies unless --no-verify is given; the report prints
// elapsed time, the app metric when there is one (Floorplan nodes/s) and
// the scheduler's task counters.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "runtime/rt.hpp"

namespace core = bots::core;
namespace rt = bots::rt;

namespace {

void usage() {
  std::puts(
      "usage: bots_run [options]\n"
      "  -l, --list            list applications and versions\n"
      "  -a <app>              application to run (required unless -l)\n"
      "  -v <version>          version name (default: the Figure 3 best)\n"
      "      --all-versions    run every version of the app\n"
      "      --serial          run the serial reference instead\n"
      "  -i <class>            input class: test|small|medium|large\n"
      "                        (default small)\n"
      "  -t <threads>          team size (default: hardware)\n"
      "  -r <reps>             repetitions, best-of (default 1)\n"
      "      --no-verify       skip self-verification\n"
      "      --stats           print per-worker scheduler counters\n"
      "      --deadline-ms <n> cancel any region still running after n ms\n"
      "                        (reported as status=deadline_exceeded)\n"
      "      --watchdog-ms <n> arm the stall watchdog: dump per-worker state\n"
      "                        to stderr when no task progresses for n ms\n"
      "      --fault-plan <s>  deterministic fault injection, e.g.\n"
      "                        'seed=7,all=0.02' or 'task_body=0.05'\n"
      "                        (sites: descriptor_alloc arena_carve\n"
      "                        thread_spawn pin mailbox_push task_body)\n"
      "      --tripwire-pool-locality\n"
      "                        exit nonzero if any descriptor retired into\n"
      "                        a pool off its birth node (pool_remote_frees\n"
      "                        > 0) — the CI locality guardrail for\n"
      "                        RT_NODE_POOLS=1 runs (implies --stats)\n"
      "      --trace-out <f>   write the per-worker event trace as\n"
      "                        Chrome-trace/perfetto JSON to <f> (implies\n"
      "                        RT_TRACE=1; also --trace-out=<f>)\n"
      "      --tripwire-pathology\n"
      "                        run the scheduling-pathology analyzers\n"
      "                        (creation-serialization, depth-first\n"
      "                        starvation, cross-node ping-pong) over the\n"
      "                        trace and exit nonzero if any fires\n"
      "                        (implies RT_TRACE=1)\n"
      "      --server --mix    persistent server mode: bring up a resident\n"
      "                        TaskServer and fire a seeded mixed-kernel\n"
      "                        request stream at it (no -a needed); also\n"
      "                        honours RT_SERVER_* (see README)\n"
      "      --rps <n>         server mode: target arrival rate (0 = closed\n"
      "                        loop, the default)\n"
      "      --requests <n>    server mode: request count (default 32)\n"
      "      --queue <n>       server mode: admission queue capacity\n");
}

void print_report(const core::RunReport& rep, bool with_stats) {
  std::printf("%-10s %-16s %-7s t=%-3u %8.3f s  verify=%s", rep.app.c_str(),
              rep.version.c_str(), to_string(rep.input), rep.threads,
              rep.seconds, to_string(rep.verified));
  if (rep.metric > 0.0) {
    std::printf("  %s=%s", rep.metric_name.c_str(),
                core::format_count(static_cast<std::uint64_t>(rep.metric))
                    .c_str());
  }
  std::printf("\n");
  if (with_stats) {
    const auto& s = rep.runtime_stats;
    std::printf(
        "           tasks: created=%llu deferred=%llu if-inlined=%llu "
        "cutoff-inlined=%llu stolen=%llu taskwaits=%llu env-bytes=%llu\n",
        static_cast<unsigned long long>(s.tasks_created),
        static_cast<unsigned long long>(s.tasks_deferred),
        static_cast<unsigned long long>(s.tasks_if_inlined),
        static_cast<unsigned long long>(s.tasks_cutoff_inlined),
        static_cast<unsigned long long>(s.tasks_stolen),
        static_cast<unsigned long long>(s.taskwaits),
        static_cast<unsigned long long>(s.env_bytes));
    std::printf(
        "           locality: steals-local=%llu steals-remote=%llu "
        "remote-probes-skipped=%llu pinned=%llu/%u grain: %s\n",
        static_cast<unsigned long long>(s.steals_local_node),
        static_cast<unsigned long long>(s.steals_remote_node),
        static_cast<unsigned long long>(s.remote_probes_skipped),
        static_cast<unsigned long long>(s.pinned), rep.threads,
        rep.grain_sites.empty() ? "n/a" : rep.grain_sites.c_str());
    std::printf(
        "           pools: home-frees=%llu remote-frees=%llu "
        "in-transit-high-water=%llu range-halves-redirected=%llu\n",
        static_cast<unsigned long long>(s.pool_home_frees),
        static_cast<unsigned long long>(s.pool_remote_frees),
        static_cast<unsigned long long>(s.pool_migrations),
        static_cast<unsigned long long>(s.range_halves_redirected));
    // Dependence/replay counters (PR 8): printed only when the version
    // actually declared dependences, so taskwait-based versions keep their
    // existing --stats output byte-for-byte.
    if (s.deps_declared != 0 || s.graphs_recorded != 0 ||
        s.graphs_replayed != 0) {
      std::printf(
          "           deps: declared=%llu edges=%llu resolved=%llu "
          "graphs: recorded=%llu replayed=%llu\n",
          static_cast<unsigned long long>(s.deps_declared),
          static_cast<unsigned long long>(s.deps_edges),
          static_cast<unsigned long long>(s.edges_resolved),
          static_cast<unsigned long long>(s.graphs_recorded),
          static_cast<unsigned long long>(s.graphs_replayed));
    }
  }
}

// Fault-tolerance counters (PR 6), printed on the --stats channel only when
// something actually happened — the common all-zero case stays silent so
// existing --stats consumers see unchanged output.
void print_fault_report(const rt::Scheduler& sched,
                        const core::RunReport& rep) {
  const auto& s = rep.runtime_stats;
  const std::uint64_t stalls = sched.stalls_detected();
  if (s.faults_injected == 0 && s.tasks_retried == 0 &&
      s.pool_alloc_fallbacks == 0 && s.tasks_degraded_inline == 0 &&
      s.tasks_discarded == 0 && s.tasks_discarded_inline == 0 &&
      stalls == 0 && !sched.team_degraded() &&
      sched.last_region_status() == rt::RegionStatus::completed) {
    return;
  }
  std::printf(
      "           faults: injected=%llu retried=%llu pool-fallbacks=%llu "
      "degraded-inline=%llu discarded=%llu+%llu stalls=%llu "
      "team-degraded=%s status=%s\n",
      static_cast<unsigned long long>(s.faults_injected),
      static_cast<unsigned long long>(s.tasks_retried),
      static_cast<unsigned long long>(s.pool_alloc_fallbacks),
      static_cast<unsigned long long>(s.tasks_degraded_inline),
      static_cast<unsigned long long>(s.tasks_discarded),
      static_cast<unsigned long long>(s.tasks_discarded_inline),
      static_cast<unsigned long long>(stalls),
      sched.team_degraded() ? "yes" : "no",
      rt::to_string(sched.last_region_status()));
}

// ---------------------------------------------------------------------------
// --server --mix: resident TaskServer fed a seeded mixed request stream.
// Each request is an in-region task recursion (the kernels' own run()
// entries open their own region and cannot nest inside the resident one).
// ---------------------------------------------------------------------------

std::uint64_t mix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = state;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t mix_fib(int n) {
  if (n < 2) return static_cast<std::uint64_t>(n);
  std::uint64_t a = 0, b = 0;
  rt::spawn([&a, n] { a = mix_fib(n - 1); });
  rt::spawn([&b, n] { b = mix_fib(n - 2); });
  rt::taskwait();
  return a + b;
}

bool mix_request(std::uint64_t seed) {
  switch (seed % 3) {
    case 0: {  // fib with a known answer
      const int n = 14 + static_cast<int>(seed % 4);
      std::uint64_t a = 0, b = 1;
      for (int i = 0; i < n; ++i) { const std::uint64_t t = a + b; a = b; b = t; }
      return mix_fib(n) == a;
    }
    case 1: {  // spawn-sorted block, verified
      std::vector<std::uint32_t> v(4096);
      std::uint64_t s = seed, sum = 0;
      for (auto& x : v) { x = static_cast<std::uint32_t>(mix64(s)); sum += x; }
      std::function<void(std::size_t, std::size_t)> sort_rec =
          [&](std::size_t lo, std::size_t hi) {
            if (hi - lo <= 256) {
              std::sort(v.begin() + static_cast<std::ptrdiff_t>(lo),
                        v.begin() + static_cast<std::ptrdiff_t>(hi));
              return;
            }
            const std::size_t mid = lo + (hi - lo) / 2;
            rt::spawn([&, lo, mid] { sort_rec(lo, mid); });
            rt::spawn([&, mid, hi] { sort_rec(mid, hi); });
            rt::taskwait();
            std::inplace_merge(v.begin() + static_cast<std::ptrdiff_t>(lo),
                               v.begin() + static_cast<std::ptrdiff_t>(mid),
                               v.begin() + static_cast<std::ptrdiff_t>(hi));
          };
      sort_rec(0, v.size());
      std::uint64_t sum2 = 0;
      bool sorted = true;
      for (std::size_t i = 0; i < v.size(); ++i) {
        sorted = sorted && (i == 0 || v[i - 1] <= v[i]);
        sum2 += v[i];
      }
      return sorted && sum == sum2;
    }
    default: {  // alignment-style range scoring
      std::atomic<std::uint64_t> total{0};
      rt::spawn_range(0, 20000, 64, [&](std::int64_t i) {
        total.fetch_add(static_cast<std::uint64_t>(i) % 7,
                        std::memory_order_relaxed);
      });
      rt::taskwait();
      std::uint64_t expect = 0;
      for (std::int64_t i = 0; i < 20000; ++i) expect += static_cast<std::uint64_t>(i) % 7;
      return total.load() == expect;
    }
  }
}

// Drain every ring into the archive (between regions — idempotent with the
// per-worker region-exit drains) and write the Chrome-trace JSON.
int export_trace(rt::Scheduler& sched, const std::string& path) {
  rt::TraceCollector* tc = sched.tracer();
  if (tc == nullptr) {
    std::fprintf(stderr, "bots_run: --trace-out requires tracing (RT_TRACE=1 "
                 "or the flag itself should have forced it)\n");
    return 1;
  }
  tc->drain_all();
  if (!tc->export_chrome_trace(path.c_str())) {
    std::fprintf(stderr, "bots_run: failed to write trace to '%s'\n",
                 path.c_str());
    return 1;
  }
  std::printf("trace: wrote %s (%llu events archived, %llu dropped)\n",
              path.c_str(),
              static_cast<unsigned long long>(tc->total_events_drained()),
              static_cast<unsigned long long>(tc->dropped()));
  return 0;
}

void print_pathology_finding(const char* name,
                             const rt::PathologyFinding& f) {
  std::printf("pathology: %-24s %s%s%s\n", name,
              f.fired ? "FIRED" : "quiet",
              f.detail.empty() ? "" : " — ", f.detail.c_str());
}

// The pathology guardrail mirroring --tripwire-pool-locality: nonzero exit
// when any detector fires — and when the check would be vacuous (no trace,
// no events) because a silently empty trace must trip, not pass.
int run_pathology_tripwire(rt::Scheduler& sched, bool fail_on_fire) {
  rt::TraceCollector* tc = sched.tracer();
  if (tc == nullptr) {
    std::fprintf(stderr,
                 "TRIPWIRE: tracing is INACTIVE — the pathology check would "
                 "be vacuous. Run with RT_TRACE=1 (the --tripwire-pathology "
                 "flag forces it; check knob plumbing).\n");
    return 1;
  }
  tc->drain_all();
  if (fail_on_fire && tc->total(rt::TraceEvent::spawn) == 0) {
    std::fprintf(stderr,
                 "TRIPWIRE: the trace recorded zero spawn events — the "
                 "pathology check would be vacuous (did the run spawn any "
                 "tasks?)\n");
    return 1;
  }
  const rt::PathologyReport rep = rt::analyze_pathologies(*tc);
  print_pathology_finding("creation-serialization", rep.creation_serialization);
  print_pathology_finding("depth-first-starvation", rep.depth_first_starvation);
  print_pathology_finding("cross-node-ping-pong", rep.cross_node_ping_pong);
  if (rep.any()) {
    if (!fail_on_fire) return 0;  // RT_PATHOLOGY report mode: advisory only
    std::fprintf(stderr,
                 "TRIPWIRE: scheduling pathology detected (see report above) "
                 "— the run exhibits a detrimental execution pattern\n");
    return 1;
  }
  if (fail_on_fire) {
    std::printf("tripwire ok: all pathology detectors quiet (%llu events, "
                "%llu dropped)\n",
                static_cast<unsigned long long>(tc->total_events_drained()),
                static_cast<unsigned long long>(tc->dropped()));
  }
  return 0;
}

int run_server_mix(unsigned threads, unsigned requests, unsigned rps,
                   std::uint32_t queue, std::uint32_t deadline_ms,
                   const std::string& fault_plan,
                   const std::string& trace_out) {
  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  if (!fault_plan.empty()) cfg.fault_plan = fault_plan;
  if (!trace_out.empty()) cfg.trace = true;
  rt::Scheduler sched(cfg);
  rt::ServerConfig sc = rt::ServerConfig::from_env();
  if (queue > 0) sc.queue_capacity = queue;
  if (deadline_ms > 0) sc.default_deadline_ms = deadline_ms;
  rt::TaskServer server(sched, sc);

  std::vector<rt::RegionHandle> handles(requests);
  auto ok = std::make_shared<std::vector<std::atomic<bool>>>(requests);
  std::uint64_t rng = 12345;
  const auto t0 = std::chrono::steady_clock::now();
  double due_us = 0;
  for (unsigned i = 0; i < requests; ++i) {
    const std::uint64_t seed = mix64(rng);
    auto res = server.submit([ok, i, seed] {
      (*ok)[i].store(mix_request(seed), std::memory_order_release);
    });
    handles[i] = res.handle;
    if (rps == 0) {
      handles[i].wait();
    } else {
      due_us += 1e6 / rps;
      std::this_thread::sleep_until(
          t0 + std::chrono::microseconds(static_cast<std::int64_t>(due_us)));
    }
  }
  std::uint64_t completed = 0, cancelled = 0, deadline = 0, rejected = 0,
                 wrong = 0, nonterminal = 0;
  std::vector<double> lat_ms;
  for (unsigned i = 0; i < requests; ++i) {
    switch (handles[i].wait()) {
      case rt::RequestStatus::completed:
        ++completed;
        if (!(*ok)[i].load(std::memory_order_acquire)) ++wrong;
        lat_ms.push_back(static_cast<double>(handles[i].latency().count()) / 1e3);
        break;
      case rt::RequestStatus::cancelled: ++cancelled; break;
      case rt::RequestStatus::deadline_exceeded: ++deadline; break;
      case rt::RequestStatus::rejected_overload: ++rejected; break;
      case rt::RequestStatus::pending: ++nonterminal; break;
    }
    if (!handles[i].ledger_balanced()) ++wrong;
  }
  server.drain();
  const rt::ServerStats st = server.stats();
  double p50 = 0, p99 = 0;
  if (!lat_ms.empty()) {
    std::sort(lat_ms.begin(), lat_ms.end());
    p50 = lat_ms[lat_ms.size() / 2];
    p99 = lat_ms[std::min(lat_ms.size() - 1, lat_ms.size() * 99 / 100)];
  }
  std::printf(
      "server-mix t=%-3u requests=%u rps=%u queue=%u  completed=%llu "
      "cancelled=%llu deadline=%llu rejected=%llu shed=%llu  p50=%.3fms "
      "p99=%.3fms\n",
      threads, requests, rps, sc.queue_capacity,
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(deadline),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(st.shed), p50, p99);
  if (!trace_out.empty() && export_trace(sched, trace_out) != 0) return 1;
  const bool conserved =
      completed + cancelled + deadline + rejected == requests &&
      st.submitted == st.completed + st.cancelled + st.deadline_exceeded +
                          st.rejected;
  if (nonterminal != 0 || wrong != 0 || !conserved) {
    std::fprintf(stderr,
                 "server-mix FAILED: nonterminal=%llu wrong=%llu conserved=%s\n",
                 static_cast<unsigned long long>(nonterminal),
                 static_cast<unsigned long long>(wrong),
                 conserved ? "yes" : "no");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name;
  std::optional<std::string> version;
  core::InputClass input = core::InputClass::small;
  unsigned threads = std::thread::hardware_concurrency();
  int reps = 1;
  bool list = false;
  bool serial = false;
  bool all_versions = false;
  bool verify = true;
  bool stats = false;
  bool tripwire_pool_locality = false;
  bool tripwire_pathology = false;
  std::string trace_out;
  std::uint32_t deadline_ms = 0;
  std::uint32_t watchdog_ms = 0;
  std::string fault_plan;
  bool server_mode = false;
  bool mix = false;
  unsigned rps = 0;
  unsigned server_requests = 32;
  std::uint32_t server_queue = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    // Numeric option values share the runtime's hardened env parser: a
    // malformed count is a usage error, never UB or a silent zero.
    auto next_u32 = [&](const char* what) -> std::uint32_t {
      const char* v = next();
      std::uint32_t out = 0;
      if (!rt::parse_u32(v, out)) {
        std::fprintf(stderr, "bots_run: invalid %s '%s' (expected an "
                     "unsigned integer)\n", what, v);
        std::exit(2);
      }
      return out;
    };
    if (arg == "-l" || arg == "--list") {
      list = true;
    } else if (arg == "-a") {
      app_name = next();
    } else if (arg == "-v") {
      version = next();
    } else if (arg == "--all-versions") {
      all_versions = true;
    } else if (arg == "--serial") {
      serial = true;
    } else if (arg == "-i") {
      const auto parsed = core::parse_input_class(next());
      if (!parsed) {
        std::fprintf(stderr, "unknown input class\n");
        return 2;
      }
      input = *parsed;
    } else if (arg == "-t") {
      threads = next_u32("thread count");
    } else if (arg == "-r") {
      reps = static_cast<int>(next_u32("repetition count"));
    } else if (arg == "--deadline-ms") {
      deadline_ms = next_u32("deadline");
    } else if (arg == "--watchdog-ms") {
      watchdog_ms = next_u32("watchdog interval");
    } else if (arg == "--fault-plan") {
      fault_plan = next();
    } else if (arg == "--no-verify") {
      verify = false;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--tripwire-pool-locality") {
      tripwire_pool_locality = true;
      stats = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg == "--tripwire-pathology") {
      tripwire_pathology = true;
    } else if (arg == "--server") {
      server_mode = true;
    } else if (arg == "--mix") {
      mix = true;
    } else if (arg == "--rps") {
      rps = next_u32("arrival rate");
    } else if (arg == "--requests") {
      server_requests = next_u32("request count");
    } else if (arg == "--queue") {
      server_queue = next_u32("queue capacity");
    } else {
      usage();
      return arg == "-h" || arg == "--help" ? 0 : 2;
    }
  }

  if (list) {
    for (const auto& app : core::apps()) {
      std::printf("%-10s %s%s\n  versions:", app.name.c_str(),
                  app.domain.c_str(), app.extension ? " [extension]" : "");
      for (const auto& v : app.versions) {
        std::printf(" %s%s", v.name.c_str(), v.paper_best ? "*" : "");
      }
      std::printf("\n  inputs: test=%s small=%s medium=%s large=%s\n",
                  app.describe_input(core::InputClass::test).c_str(),
                  app.describe_input(core::InputClass::small).c_str(),
                  app.describe_input(core::InputClass::medium).c_str(),
                  app.describe_input(core::InputClass::large).c_str());
    }
    return 0;
  }

  if (server_mode) {
    if (!mix) {
      std::fprintf(stderr,
                   "bots_run: --server currently requires --mix (the seeded "
                   "mixed-kernel request stream)\n");
      return 2;
    }
    return run_server_mix(threads, server_requests, rps, server_queue,
                          deadline_ms, fault_plan, trace_out);
  }

  const auto* app = core::find_app(app_name);
  if (app == nullptr) {
    std::fprintf(stderr, "unknown application '%s' (use -l to list)\n",
                 app_name.c_str());
    return 2;
  }

  if (serial) {
    core::RunReport best;
    for (int r = 0; r < reps; ++r) {
      auto rep = app->run_serial(input);
      if (r == 0 || rep.seconds < best.seconds) best = rep;
    }
    print_report(best, false);
    return best.verified == core::Verified::failed ? 1 : 0;
  }

  std::vector<std::string> to_run;
  if (all_versions) {
    for (const auto& v : app->versions) to_run.push_back(v.name);
  } else {
    to_run.push_back(version.value_or(app->best_version().name));
  }

  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  if (deadline_ms > 0) cfg.region_deadline_ms = deadline_ms;
  if (watchdog_ms > 0) cfg.watchdog_ms = watchdog_ms;
  if (!fault_plan.empty()) cfg.fault_plan = fault_plan;
  // Both trace consumers force the producer on — a trace flag that silently
  // produced an empty file would be worse than an error.
  if (!trace_out.empty() || tripwire_pathology) cfg.trace = true;
  rt::Scheduler sched(cfg);
  int exit_code = 0;
  std::uint64_t remote_frees = 0;  // across every rep, not just the best
  for (const auto& v : to_run) {
    core::RunReport best;
    for (int r = 0; r < reps; ++r) {
      auto rep = app->run(input, v, sched, verify);
      remote_frees += rep.runtime_stats.pool_remote_frees;
      if (r == 0 || rep.seconds < best.seconds) best = rep;
    }
    print_report(best, stats);
    if (stats) print_fault_report(sched, best);
    // A deadline-cancelled run produced a truncated (unverifiable) answer;
    // report it as a failure distinct from a verify mismatch.
    if (sched.last_region_status() != rt::RegionStatus::completed) {
      std::fprintf(stderr, "bots_run: region ended with status=%s\n",
                   rt::to_string(sched.last_region_status()));
      exit_code = 1;
    }
    if (best.verified == core::Verified::failed) exit_code = 1;
  }
  if (!trace_out.empty() && export_trace(sched, trace_out) != 0) {
    exit_code = 1;
  }
  if (tripwire_pool_locality) {
    // The locality guardrail mirroring bench_spawn_overhead's zero-alloc
    // tripwire: with node pools active, a descriptor retiring into a pool
    // off its birth node is a regression of the whole mechanism — fail
    // loudly so CI trips instead of the next paper-figure rerun. A
    // multi-node topology where node pools silently FAILED to activate
    // (broken knob plumbing, use_task_pool regression) would make the
    // counter check vacuous, so that is a trip too.
    if (!sched.node_pools_active()) {
      std::fprintf(stderr,
                   "TRIPWIRE: node pools are INACTIVE (%u-node topology, "
                   "source %s) — the locality guardrail would be vacuous. "
                   "Run under a multi-node topology (RT_SYNTHETIC_TOPOLOGY="
                   "2x4) with RT_NODE_POOLS=1 and pooling on.\n",
                   sched.topology().num_nodes(),
                   sched.topology().source().c_str());
      return 1;
    }
    if (remote_frees > 0) {
      std::fprintf(stderr,
                   "TRIPWIRE: pool-locality regression — %llu descriptor "
                   "free(s) landed off their birth node (pool_remote_frees "
                   "must be 0 while node pools are on; node_pools_active=%s)\n",
                   static_cast<unsigned long long>(remote_frees),
                   sched.node_pools_active() ? "yes" : "no");
      return 1;
    }
    // The counter above guards the retire ROUTING knob; the resting-place
    // balance guards the routing ITSELF (e.g. a stash spliced into the
    // wrong node's arena keeps the counter at zero but breaks this):
    // between regions, every descriptor carved from a node's arena must
    // rest ON that node, with nothing left in transit.
    const auto snap = sched.node_pool_snapshot();
    for (std::size_t n = 0; n < snap.size(); ++n) {
      if (snap[n].in_transit != 0 ||
          snap[n].cached + snap[n].arena_free != snap[n].arena_carved) {
        std::fprintf(stderr,
                     "TRIPWIRE: pool-locality imbalance on node %zu — "
                     "cached=%zu arena_free=%zu in_transit=%zu != "
                     "carved=%zu (descriptors rest off their birth node)\n",
                     n, snap[n].cached, snap[n].arena_free,
                     snap[n].in_transit, snap[n].arena_carved);
        return 1;
      }
    }
    std::printf("tripwire ok: pool_remote_frees=0 and per-node pool balance "
                "exact across %d rep(s) (node_pools_active=%s)\n",
                reps, sched.node_pools_active() ? "yes" : "no");
  }
  if (tripwire_pathology || sched.config().pathology) {
    const int rc = run_pathology_tripwire(sched, tripwire_pathology);
    if (rc != 0) return rc;
  }
  return exit_code;
}
