// Domain scenario: greedy single-linkage clustering of a protein set on top
// of the Alignment kernel's public API — the kind of irregular, all-pairs
// workload the paper's introduction motivates for task parallelism.
//
//   $ ./examples/protein_clustering [nseq] [threads]
//
// Scores all pairs in parallel (one task per pair inside a worksharing
// loop, exactly the BOTS Alignment scheme), normalizes scores by
// self-alignment, then clusters greedily at a similarity threshold and
// prints the clusters with their consensus strength.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "kernels/alignment/alignment.hpp"

namespace al = bots::alignment;
namespace rt = bots::rt;

namespace {

std::size_t pair_index(int n, int i, int j) {
  return static_cast<std::size_t>(i) * (2 * n - i - 1) / 2 +
         static_cast<std::size_t>(j - i - 1);
}

}  // namespace

int main(int argc, char** argv) {
  al::Params params;
  params.nseq = argc > 1 ? std::stoi(argv[1]) : 48;
  params.len_min = 120;
  params.len_max = 200;
  rt::SchedulerConfig cfg;
  if (argc > 2) cfg.num_threads = static_cast<unsigned>(std::stoul(argv[2]));
  rt::Scheduler sched(cfg);

  const auto seqs = al::make_input(params);
  std::printf("scoring %d proteins (%zu pairs) on %u workers...\n",
              params.nseq, seqs.size() * (seqs.size() - 1) / 2,
              sched.num_workers());

  bots::core::Timer timer;
  const auto scores = al::run_parallel(params, seqs, sched, {});
  std::printf("all-pairs scoring took %.3f s (%llu tasks)\n", timer.seconds(),
              static_cast<unsigned long long>(
                  sched.stats().total.tasks_created));

  // Normalized similarity: score(i,j) / min(score(i,i), score(j,j)).
  std::vector<int> self(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    self[i] = al::pair_score(seqs[i], seqs[i], params);
  }
  auto similarity = [&](int i, int j) {
    const double s = scores[pair_index(params.nseq, i, j)];
    return s / std::max(1, std::min(self[i], self[j]));
  };

  // Greedy single-linkage clustering.
  const double threshold = 0.18;
  std::vector<int> cluster(seqs.size(), -1);
  int nclusters = 0;
  for (int i = 0; i < params.nseq; ++i) {
    if (cluster[i] >= 0) continue;
    cluster[i] = nclusters++;
    for (int j = i + 1; j < params.nseq; ++j) {
      if (cluster[j] < 0 && similarity(i, j) >= threshold) {
        cluster[j] = cluster[i];
      }
    }
  }

  std::printf("clusters at similarity >= %.2f: %d\n", threshold, nclusters);
  for (int c = 0; c < nclusters; ++c) {
    std::string members;
    int count = 0;
    for (int i = 0; i < params.nseq; ++i) {
      if (cluster[i] == c) {
        members += (count != 0 ? "," : "") + std::to_string(i);
        ++count;
      }
    }
    if (count > 1) {
      std::printf("  cluster %2d (%2d proteins): %s\n", c, count,
                  members.c_str());
    }
  }

  // Closest pair overall (the "best score" output of the BOTS benchmark).
  int best_i = 0;
  int best_j = 1;
  double best_sim = -1.0;
  for (int i = 0; i < params.nseq; ++i) {
    for (int j = i + 1; j < params.nseq; ++j) {
      if (similarity(i, j) > best_sim) {
        best_sim = similarity(i, j);
        best_i = i;
        best_j = j;
      }
    }
  }
  std::printf("most similar pair: %d and %d (similarity %.3f, raw score %d)\n",
              best_i, best_j, best_sim,
              scores[pair_index(params.nseq, best_i, best_j)]);
  return 0;
}
