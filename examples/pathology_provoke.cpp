// Deliberately-pathological workload driver for the nightly pathology legs.
//
// The creation-serialization and depth-first-starvation detectors can be
// provoked through bots_run with real BOTS kernels (sparselu single-tied is
// the paper's serial task generator; RT_CUTOFF=max_depth RT_CUTOFF_VALUE=1
// starves thieves under any recursive kernel). Cross-node ping-pong cannot:
// a healthy work-stealing runtime keeps bounce ratios under ~10% on every
// BOTS kernel no matter how adversarial the knobs, which is exactly why the
// detector's 25% threshold stays quiet on them. This driver builds the
// workload that DOES bounce — a serial dependency chain with tail work:
//
//   each link spawns its successor and then keeps computing (the tail), so
//   the only ready task in the system sits in a busy worker's deque and the
//   other node's idle worker steals it; by the time the next link spawns,
//   the roles have swapped. Every link crosses the node boundary, in
//   alternating directions — the textbook socket ping-pong of a pipelined
//   workload scheduled placement-blind.
//
// The tail must dwarf the idle-side park cadence (the hungry worker backs
// off into ~ms sleeps between probe rounds) or the spawner pops its own
// successor before the other node wakes; the 4 ms default gives the thief
// several probe rounds per link and yields a >90% bounce ratio in practice.
//
// Run on a multi-node topology with one worker per node so every steal is a
// cross-node steal:
//
//   RT_SYNTHETIC_TOPOLOGY=2x1 RT_STEAL_POLICY=random \
//     ./pathology_provoke --trace-out=pingpong.json
//
// Exits 0 only if the cross-node-ping-pong detector FIRED (this binary
// exists to prove the detector catches the pattern; a quiet run is the
// failure), nonzero on a quiet detector, a single-node topology (the check
// would be vacuous) or an export error.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/rt.hpp"

namespace rt = bots::rt;

namespace {

/// Busy tail work: keeps the spawner occupied long enough for the other
/// node's hungry worker to win the race for the freshly-spawned link.
void spin_us(unsigned us) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
             .count() < us) {
    asm volatile("");
  }
}

struct Chain {
  unsigned tail_us;
  std::atomic<std::uint64_t> done{0};

  void link(unsigned left) {
    if (left > 0) {
      rt::spawn(rt::Tiedness::untied, [this, left] { link(left - 1); });
    }
    spin_us(tail_us);
    done.fetch_add(1, std::memory_order_relaxed);
  }
};

void print_finding(const char* name, const rt::PathologyFinding& f) {
  std::printf("pathology: %-24s %s%s%s\n", name, f.fired ? "FIRED" : "quiet",
              f.detail.empty() ? "" : " — ", f.detail.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  unsigned links = 150;
  unsigned tail_us = 4000;
  unsigned threads = 2;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pathology_provoke: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--links") {
      links = static_cast<unsigned>(std::strtoul(next("--links"), nullptr, 10));
    } else if (arg == "--tail-us") {
      tail_us =
          static_cast<unsigned>(std::strtoul(next("--tail-us"), nullptr, 10));
    } else if (arg == "-t" || arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next("-t"), nullptr, 10));
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg == "--trace-out") {
      trace_out = next("--trace-out");
    } else {
      std::fprintf(stderr,
                   "usage: pathology_provoke [--links N] [--tail-us N] "
                   "[-t threads] [--trace-out f.json]\n");
      return 2;
    }
  }

  rt::SchedulerConfig cfg;
  cfg.num_threads = threads;
  cfg.trace = true;  // the whole point; never run this driver blind
  // The private LIFO slot parks the newest spawn where thieves cannot see
  // it — with it on, a lone chain successor would simply be popped back by
  // its spawner and the chain would never migrate. Turning it off models
  // the placement-blind runtime the pattern comes from: every spawn lands
  // in the public deque, and whichever node's worker gets there first owns
  // the next link.
  cfg.lifo_slot = false;
  rt::Scheduler sched(cfg);

  if (sched.topology().num_nodes() < 2) {
    std::fprintf(stderr,
                 "pathology_provoke: single-node topology — every transfer "
                 "would be node-local and the ping-pong check vacuous. Run "
                 "with RT_SYNTHETIC_TOPOLOGY=2x1 (one worker per node).\n");
    return 1;
  }

  Chain chain{tail_us, {}};
  sched.run_single([&] { chain.link(links); });
  const std::uint64_t expect = links + 1ULL;
  if (chain.done.load(std::memory_order_relaxed) != expect) {
    std::fprintf(stderr, "pathology_provoke: chain lost links (%llu of %llu)\n",
                 static_cast<unsigned long long>(chain.done.load()),
                 static_cast<unsigned long long>(expect));
    return 1;
  }

  rt::TraceCollector* tc = sched.tracer();
  tc->drain_all();
  const rt::PathologyReport rep = rt::analyze_pathologies(*tc);
  print_finding("creation-serialization", rep.creation_serialization);
  print_finding("depth-first-starvation", rep.depth_first_starvation);
  print_finding("cross-node-ping-pong", rep.cross_node_ping_pong);

  if (!trace_out.empty()) {
    if (!tc->export_chrome_trace(trace_out.c_str())) {
      std::fprintf(stderr, "pathology_provoke: cannot write '%s'\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("trace: wrote %s (%llu events archived, %llu dropped)\n",
                trace_out.c_str(),
                static_cast<unsigned long long>(tc->total_events_drained()),
                static_cast<unsigned long long>(tc->dropped()));
  }

  if (!rep.cross_node_ping_pong.fired) {
    std::fprintf(stderr,
                 "pathology_provoke: cross-node-ping-pong stayed QUIET on the "
                 "provocation chain — the detector lost the pattern\n");
    return 1;
  }
  std::printf("provocation ok: ping-pong detector fired (score %.2f)\n",
              rep.cross_node_ping_pong.score);
  return 0;
}
