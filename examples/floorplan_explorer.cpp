// Domain scenario: interactive-style exploration of the Floorplan branch-
// and-bound — the paper's showcase for controlled indeterminism and the
// nodes/second metric.
//
//   $ ./examples/floorplan_explorer [ncells] [threads]
//
// Runs the search serially and at several cut-off depths in parallel,
// reporting optimal area, nodes visited and the node rate. Because the
// shared best-bound races, parallel node counts vary run to run while the
// optimum never does — the exact behaviour Section III-B describes.
#include <cstdio>
#include <string>

#include "kernels/floorplan/floorplan.hpp"

namespace fp = bots::floorplan;
namespace rt = bots::rt;
namespace core = bots::core;

int main(int argc, char** argv) {
  fp::Params params = fp::params_for(core::InputClass::small);
  if (argc > 1) params.ncells = std::stoi(argv[1]);
  rt::SchedulerConfig cfg;
  if (argc > 2) cfg.num_threads = static_cast<unsigned>(std::stoul(argv[2]));
  rt::Scheduler sched(cfg);

  const auto cells = fp::make_input(params);
  int total_area = 0;
  std::printf("cells (largest first):\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("  cell %2zu area %2d, shapes:", i, cells[i].area);
    for (const auto& [w, h] : cells[i].shapes) std::printf(" %dx%d", w, h);
    std::printf("\n");
    total_area += cells[i].area;
  }
  std::printf("lower bound (sum of areas): %d\n\n", total_area);

  core::Timer timer;
  const fp::Result serial = fp::run_serial(params, cells);
  const double serial_secs = timer.seconds();
  std::printf("%-28s area %3d  %9llu nodes  %8.3f s  %s nodes/s\n", "serial",
              serial.best_area,
              static_cast<unsigned long long>(serial.nodes), serial_secs,
              core::format_count(static_cast<std::uint64_t>(
                                     static_cast<double>(serial.nodes) /
                                     serial_secs))
                  .c_str());

  for (int depth : {1, 2, 3, 5}) {
    fp::Params p = params;
    p.cutoff_depth = depth;
    core::Timer t;
    const fp::Result r = fp::run_parallel(
        p, cells, sched, {rt::Tiedness::untied, core::AppCutoff::manual});
    const double secs = t.seconds();
    const double rate = static_cast<double>(r.nodes) / secs;
    std::printf(
        "%u threads, cut-off depth %-2d  area %3d  %9llu nodes  %8.3f s  "
        "%s nodes/s (%.1fx node rate)\n",
        sched.num_workers(), depth, r.best_area,
        static_cast<unsigned long long>(r.nodes), secs,
        core::format_count(static_cast<std::uint64_t>(rate)).c_str(),
        rate / (static_cast<double>(serial.nodes) / serial_secs));
    if (r.best_area != serial.best_area) {
      std::printf("  ERROR: parallel optimum differs from serial!\n");
      return 1;
    }
  }
  std::printf(
      "\nNote how parallel node counts differ from the serial count (racy\n"
      "best-bound pruning) while the optimal area never changes — the\n"
      "paper's rationale for reporting nodes/second.\n");
  return 0;
}
