// Domain scenario: what-if analysis over the Columbian Health Care System
// simulation — varying the sickness rate and simulation horizon, the way a
// policy analyst would drive the model. Each scenario is a full parallel
// simulation; determinism (per-village seeds) makes scenarios comparable.
//
//   $ ./examples/health_whatif [threads]
#include <cstdio>
#include <iostream>
#include <string>

#include "core/report.hpp"
#include "kernels/health/health.hpp"

namespace hl = bots::health;
namespace rt = bots::rt;
namespace core = bots::core;

int main(int argc, char** argv) {
  rt::SchedulerConfig cfg;
  if (argc > 1) cfg.num_threads = static_cast<unsigned>(std::stoul(argv[1]));
  rt::Scheduler sched(cfg);

  hl::Params base = hl::params_for(core::InputClass::small);
  std::printf("hierarchy: %s, %d patients/village, %d steps, %u workers\n\n",
              hl::describe(base).c_str(), base.population, base.sim_steps,
              sched.num_workers());

  core::TableWriter table({"sickness rate", "healthy", "waiting", "in assess",
                           "in treatment", "hospital-days", "visits",
                           "run (s)"});
  for (int p_sick : {100, 200, 400, 800, 1600}) {
    hl::Params p = base;
    p.p_sick = p_sick;
    core::Timer timer;
    const hl::Stats s =
        hl::run_parallel(p, sched, {rt::Tiedness::tied,
                                    bots::core::AppCutoff::manual});
    table.add_row({core::format_fixed(p_sick / 100.0, 1) + "%",
                   std::to_string(s.population), std::to_string(s.waiting),
                   std::to_string(s.assess), std::to_string(s.inside),
                   std::to_string(s.total_time),
                   std::to_string(s.total_hosps_visited),
                   core::format_fixed(timer.seconds(), 3)});
  }
  std::printf("end-of-horizon population state vs sickness probability:\n");
  table.render(std::cout);

  std::printf("\nWaiting-list growth over the horizon (4%% sickness):\n");
  core::TableWriter growth({"steps", "waiting", "hospital-days per patient"});
  for (int steps : {50, 100, 200, 400}) {
    hl::Params p = base;
    p.p_sick = 400;
    p.sim_steps = steps;
    const hl::Stats s =
        hl::run_parallel(p, sched, {rt::Tiedness::tied,
                                    bots::core::AppCutoff::manual});
    const double patients =
        static_cast<double>(s.population + s.waiting + s.assess + s.inside);
    growth.add_row({std::to_string(steps), std::to_string(s.waiting),
                    core::format_fixed(
                        static_cast<double>(s.total_time) / patients, 2)});
  }
  growth.render(std::cout);
  return 0;
}
